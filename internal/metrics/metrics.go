// Package metrics is the slot-level observability layer of the
// simulators: a Collector interface the engines report protocol events
// to, a zero-allocation no-op default, and a concrete SlotMetrics
// implementation that turns every instrumented run into a self-auditing
// experiment.
//
// The counters are exactly the channel-level quantities the paper
// reasons about directly: idle / success / collision slots (the
// windowing overhead h(n) of §3.2 is their per-message expectation),
// element-(4) sender discards (§4.2's explanation for the controlled
// protocol's advantage), busy time and therefore utilization (§4.2's
// "the channel is never used for the transmission of messages which are
// lost"), and a fixed-bin streaming histogram of accepted waiting times
// (the empirical counterpart of eq. 4.4's conditional waiting-time law).
//
// Two conservation invariants tie the counters to the run they came
// from, making the collector double as correctness tooling:
//
//	arrivals == transmissions + discards + resident        (messages)
//	idle + busy + collision channel time == elapsed time   (slot time)
//
// The simulators check both after every instrumented run through the
// ConservationChecker interface and fail loudly on violation.
//
// SlotMetrics counts *every* event of a run, warmup included — it is
// channel-level accounting, not the warmup-filtered statistical view of
// sim.Report.  With a zero warmup the two views coincide and
// SlotMetrics.Loss equals Report.Loss exactly (asserted by the sim
// package's agreement tests).
//
// A SlotMetrics is not safe for concurrent use; give each concurrent
// run its own collector (as sim.Figure7Panels does) and Merge the
// results afterwards if aggregate numbers are wanted.
package metrics

import (
	"expvar"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"windowctl/internal/stats"
)

// SlotOutcome classifies one probe slot of the protocol, mirroring the
// ternary channel feedback.
type SlotOutcome int

// SlotOutcome values.
const (
	// SlotIdle: no station transmitted; the slot cost τ.
	SlotIdle SlotOutcome = iota
	// SlotSuccess: exactly one station transmitted; the slot carried a
	// message and cost the transmission time.
	SlotSuccess
	// SlotCollision: two or more stations transmitted; the slot cost τ.
	SlotCollision
)

// String implements fmt.Stringer.
func (o SlotOutcome) String() string {
	switch o {
	case SlotIdle:
		return "idle"
	case SlotSuccess:
		return "success"
	case SlotCollision:
		return "collision"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// FaultKind classifies one injected feedback fault (see internal/fault):
// the three ways imperfect channel sensing can corrupt the ternary
// feedback a station perceives.
type FaultKind int

// FaultKind values.
const (
	// FaultErasure: a station read the slot as noise and could not
	// classify it at all.
	FaultErasure FaultKind = iota
	// FaultFalseCollision: an idle or success slot was misread as a
	// collision.
	FaultFalseCollision
	// FaultMissedCollision: a collision was misread as a success.
	FaultMissedCollision
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultErasure:
		return "erasure"
	case FaultFalseCollision:
		return "false-collision"
	case FaultMissedCollision:
		return "missed-collision"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Collector receives protocol events from the simulation engines.  The
// engines call it unconditionally on their hot paths, so implementations
// must be cheap and must not retain the arguments; Nop is the
// zero-overhead default, SlotMetrics the standard accounting one.
type Collector interface {
	// RecordArrivals reports n new message arrivals (warmup included).
	RecordArrivals(n int64)
	// RecordSlots reports n consecutive probe slots with the same
	// outcome that together occupied the channel for channelTime.  The
	// engines batch where they can (the idle fast-forward reports a whole
	// skipped stretch in one call).
	RecordSlots(o SlotOutcome, n int64, channelTime float64)
	// RecordSplit reports one window split during collision resolution.
	RecordSplit()
	// RecordDiscards reports n messages discarded at the sender under
	// policy element (4).
	RecordDiscards(n int64)
	// RecordTransmission reports one completed message transmission with
	// its true waiting time; accepted means the wait met the constraint.
	RecordTransmission(wait float64, accepted bool)
	// RecordEndPending reports the end-of-run classification of measured
	// messages still pending: lost (older than K, can only be lost) and
	// censored (age <= K, fate unknown).
	RecordEndPending(lost, censored int64)
}

// Nop is the zero-allocation no-op Collector: every method is an empty
// value-receiver call, so storing it in a Collector interface does not
// allocate and calling it does no work.
type Nop struct{}

// RecordArrivals implements Collector.
func (Nop) RecordArrivals(int64) {}

// RecordSlots implements Collector.
func (Nop) RecordSlots(SlotOutcome, int64, float64) {}

// RecordSplit implements Collector.
func (Nop) RecordSplit() {}

// RecordDiscards implements Collector.
func (Nop) RecordDiscards(int64) {}

// RecordTransmission implements Collector.
func (Nop) RecordTransmission(float64, bool) {}

// RecordEndPending implements Collector.
func (Nop) RecordEndPending(int64, int64) {}

// OrNop returns c, or the no-op collector when c is nil, so engines can
// call through an always-non-nil Collector without branching per event.
func OrNop(c Collector) Collector {
	if c == nil {
		return Nop{}
	}
	return c
}

// FaultObserver is the optional Collector extension for imperfect-feedback
// runs (internal/fault): collectors implementing it additionally receive
// every injected feedback fault, every triggered protocol recovery, and
// every detected inter-station desynchronization.  Plain six-method
// Collectors keep working — the engines fall back to a no-op observer.
type FaultObserver interface {
	// RecordFault reports one injected feedback fault of the given kind.
	RecordFault(k FaultKind)
	// RecordRecovery reports one triggered resolver recovery: a windowing
	// process that aborted to a bounded re-enable of its window instead of
	// completing, because its feedback view became untrustworthy.
	RecordRecovery()
	// RecordDesync reports one detected desynchronization event: stations
	// whose per-station feedback perceptions drove their resolvers into
	// disagreeing protocol states.
	RecordDesync()
}

// RecordFault implements FaultObserver.
func (Nop) RecordFault(FaultKind) {}

// RecordRecovery implements FaultObserver.
func (Nop) RecordRecovery() {}

// RecordDesync implements FaultObserver.
func (Nop) RecordDesync() {}

// FaultObserverOrNop returns c's FaultObserver view, or a no-op observer
// when c is nil or does not implement the extension, so engines can call
// through an always-non-nil FaultObserver without branching per event.
func FaultObserverOrNop(c Collector) FaultObserver {
	if fo, ok := c.(FaultObserver); ok {
		return fo
	}
	return Nop{}
}

// Checkpoint snapshots the conservation-relevant counters of a
// SlotMetrics, delimiting the events of one run when a collector is
// reused across runs (e.g. cmd/sweep aggregating a whole grid).
type Checkpoint struct {
	arrivals, transmissions, discards int64
	channelTime                       float64
}

// ConservationChecker is implemented by collectors whose counters can be
// verified against the run they were recorded from.  The simulators
// check every instrumented run whose collector implements it and fail
// the run on violation; SlotMetrics implements it.
type ConservationChecker interface {
	// Checkpoint snapshots the counters before a run starts.
	Checkpoint() Checkpoint
	// CheckConservation verifies the invariants over the events recorded
	// since the checkpoint: resident is the number of messages still
	// pending when the run ended, elapsed the channel time the run
	// accounted for.
	CheckConservation(since Checkpoint, resident int64, elapsed float64) error
}

// SlotMetrics is the standard Collector: plain counters plus an optional
// waiting-time histogram, all exported for direct reading.  The zero
// value is usable (no histogram); NewSlotMetrics attaches one.
type SlotMetrics struct {
	// Arrivals counts every message arrival reported to the collector.
	Arrivals int64
	// IdleSlots, SuccessSlots and CollisionSlots count probe slots by
	// outcome.
	IdleSlots, SuccessSlots, CollisionSlots int64
	// Splits counts window splits during collision resolution; the
	// per-transmission expectation is the overhead the paper's h(n)
	// recursion prices into the service time.
	Splits int64
	// Discards counts messages dropped at the sender (element (4)).
	Discards int64
	// Transmissions, Accepted and Late count completed transmissions and
	// their constraint outcome (Accepted + Late == Transmissions).
	Transmissions, Accepted, Late int64
	// PendingLost and PendingCensored classify the measured messages
	// still pending at the end of the run.
	PendingLost, PendingCensored int64
	// Erasures, FalseCollisions and MissedCollisions count injected
	// feedback faults by kind (imperfect-feedback runs; zero otherwise).
	Erasures, FalseCollisions, MissedCollisions int64
	// Recoveries counts windowing processes that aborted to a bounded
	// re-enable of their window after untrustworthy feedback.
	Recoveries int64
	// Desyncs counts detected inter-station desynchronization events
	// (per-station faults only).
	Desyncs int64
	// IdleTime, BusyTime and CollisionTime partition the accounted
	// channel time by slot outcome.
	IdleTime, BusyTime, CollisionTime float64
	// WaitHist, when non-nil, is the fixed-bin streaming histogram of
	// *accepted* waiting times (bin width = τ by convention).
	WaitHist *stats.Histogram
}

// NewSlotMetrics creates a SlotMetrics whose waiting-time histogram has
// the given bin width and bin count (use binWidth = τ and enough bins to
// cover K, as the simulators' own Report histogram does).  It panics on
// non-positive arguments.
func NewSlotMetrics(binWidth float64, bins int) *SlotMetrics {
	return &SlotMetrics{WaitHist: stats.NewHistogram(binWidth, bins)}
}

// RecordArrivals implements Collector.
func (m *SlotMetrics) RecordArrivals(n int64) { m.Arrivals += n }

// RecordSlots implements Collector.
func (m *SlotMetrics) RecordSlots(o SlotOutcome, n int64, channelTime float64) {
	switch o {
	case SlotIdle:
		m.IdleSlots += n
		m.IdleTime += channelTime
	case SlotSuccess:
		m.SuccessSlots += n
		m.BusyTime += channelTime
	case SlotCollision:
		m.CollisionSlots += n
		m.CollisionTime += channelTime
	default:
		panic(fmt.Sprintf("metrics: unknown slot outcome %d", int(o)))
	}
}

// RecordSplit implements Collector.
func (m *SlotMetrics) RecordSplit() { m.Splits++ }

// RecordDiscards implements Collector.
func (m *SlotMetrics) RecordDiscards(n int64) { m.Discards += n }

// RecordTransmission implements Collector.
func (m *SlotMetrics) RecordTransmission(wait float64, accepted bool) {
	m.Transmissions++
	if accepted {
		m.Accepted++
		if m.WaitHist != nil {
			m.WaitHist.Add(wait)
		}
	} else {
		m.Late++
	}
}

// RecordEndPending implements Collector.
func (m *SlotMetrics) RecordEndPending(lost, censored int64) {
	m.PendingLost += lost
	m.PendingCensored += censored
}

// RecordFault implements FaultObserver.
func (m *SlotMetrics) RecordFault(k FaultKind) {
	switch k {
	case FaultErasure:
		m.Erasures++
	case FaultFalseCollision:
		m.FalseCollisions++
	case FaultMissedCollision:
		m.MissedCollisions++
	default:
		panic(fmt.Sprintf("metrics: unknown fault kind %d", int(k)))
	}
}

// RecordRecovery implements FaultObserver.
func (m *SlotMetrics) RecordRecovery() { m.Recoveries++ }

// RecordDesync implements FaultObserver.
func (m *SlotMetrics) RecordDesync() { m.Desyncs++ }

// Faults returns the total number of injected feedback faults.
func (m *SlotMetrics) Faults() int64 { return m.Erasures + m.FalseCollisions + m.MissedCollisions }

// ElapsedTime returns the total channel time accounted for.
func (m *SlotMetrics) ElapsedTime() float64 { return m.IdleTime + m.BusyTime + m.CollisionTime }

// Utilization returns the fraction of accounted channel time spent
// carrying successful transmissions (0 when nothing is accounted).
func (m *SlotMetrics) Utilization() float64 {
	t := m.ElapsedTime()
	if t == 0 {
		return 0
	}
	return m.BusyTime / t
}

// Lost returns the messages known lost from the counters alone: sender
// discards, late transmissions, and end-of-run pending messages already
// older than K.
func (m *SlotMetrics) Lost() int64 { return m.Discards + m.Late + m.PendingLost }

// Decided returns the messages with a known fate.
func (m *SlotMetrics) Decided() int64 { return m.Accepted + m.Lost() }

// Loss returns the loss fraction computed from the counters (0 when
// nothing was decided).  For a zero-warmup run it equals the
// corresponding sim.Report.Loss exactly.
func (m *SlotMetrics) Loss() float64 {
	d := m.Decided()
	if d == 0 {
		return 0
	}
	return float64(m.Lost()) / float64(d)
}

// DiscardFraction returns the fraction of arrivals discarded at the
// sender under element (4) — the §4.2 discard rate.
func (m *SlotMetrics) DiscardFraction() float64 {
	if m.Arrivals == 0 {
		return 0
	}
	return float64(m.Discards) / float64(m.Arrivals)
}

// Checkpoint implements ConservationChecker.
func (m *SlotMetrics) Checkpoint() Checkpoint {
	return Checkpoint{
		arrivals:      m.Arrivals,
		transmissions: m.Transmissions,
		discards:      m.Discards,
		channelTime:   m.ElapsedTime(),
	}
}

// CheckConservation implements ConservationChecker: over the events
// recorded since the checkpoint it verifies
//
//	arrivals == transmissions + discards + resident
//
// exactly, and
//
//	idle + busy + collision channel time == elapsed
//
// within a small relative tolerance (the two sides accumulate the same
// slot durations in different orders).
func (m *SlotMetrics) CheckConservation(since Checkpoint, resident int64, elapsed float64) error {
	arrivals := m.Arrivals - since.arrivals
	transmissions := m.Transmissions - since.transmissions
	discards := m.Discards - since.discards
	if arrivals != transmissions+discards+resident {
		return fmt.Errorf("metrics: message conservation violated: %d arrivals != %d transmissions + %d discards + %d resident",
			arrivals, transmissions, discards, resident)
	}
	accounted := m.ElapsedTime() - since.channelTime
	tol := 1e-6 * (1 + math.Abs(elapsed))
	if math.Abs(accounted-elapsed) > tol {
		return fmt.Errorf("metrics: slot-time conservation violated: accounted %.9g != elapsed %.9g (|Δ|=%.3g > tol %.3g)",
			accounted, elapsed, math.Abs(accounted-elapsed), tol)
	}
	return nil
}

// Merge folds another collector's counts into this one (for aggregating
// per-run collectors).  Histograms are merged only when both exist with
// identical shape; otherwise the merged histogram is dropped, since bins
// from different (τ, K) runs are not comparable.
func (m *SlotMetrics) Merge(o *SlotMetrics) {
	m.Arrivals += o.Arrivals
	m.IdleSlots += o.IdleSlots
	m.SuccessSlots += o.SuccessSlots
	m.CollisionSlots += o.CollisionSlots
	m.Splits += o.Splits
	m.Discards += o.Discards
	m.Transmissions += o.Transmissions
	m.Accepted += o.Accepted
	m.Late += o.Late
	m.PendingLost += o.PendingLost
	m.PendingCensored += o.PendingCensored
	m.Erasures += o.Erasures
	m.FalseCollisions += o.FalseCollisions
	m.MissedCollisions += o.MissedCollisions
	m.Recoveries += o.Recoveries
	m.Desyncs += o.Desyncs
	m.IdleTime += o.IdleTime
	m.BusyTime += o.BusyTime
	m.CollisionTime += o.CollisionTime
	if m.WaitHist != nil && o.WaitHist != nil && m.WaitHist.SameShape(o.WaitHist) {
		m.WaitHist.Merge(o.WaitHist)
	} else {
		m.WaitHist = nil
	}
}

// Snapshot is a flat, JSON-ready view of the counters plus the derived
// rates; it is what the expvar exposition publishes.
type Snapshot struct {
	Arrivals         int64   `json:"arrivals"`
	IdleSlots        int64   `json:"idle_slots"`
	SuccessSlots     int64   `json:"success_slots"`
	CollisionSlots   int64   `json:"collision_slots"`
	Splits           int64   `json:"splits"`
	Discards         int64   `json:"discards"`
	Transmissions    int64   `json:"transmissions"`
	Accepted         int64   `json:"accepted"`
	Late             int64   `json:"late"`
	PendingLost      int64   `json:"pending_lost"`
	PendingCensored  int64   `json:"pending_censored"`
	Erasures         int64   `json:"erasures"`
	FalseCollisions  int64   `json:"false_collisions"`
	MissedCollisions int64   `json:"missed_collisions"`
	Recoveries       int64   `json:"recoveries"`
	Desyncs          int64   `json:"desyncs"`
	IdleTime         float64 `json:"idle_time"`
	BusyTime         float64 `json:"busy_time"`
	CollisionTime    float64 `json:"collision_time"`
	Utilization      float64 `json:"utilization"`
	Loss             float64 `json:"loss"`
	DiscardFraction  float64 `json:"discard_fraction"`
	WaitCount        int64   `json:"wait_count"`
	WaitMean         float64 `json:"wait_mean"`
}

// Snapshot returns the current counter values and derived rates.
func (m *SlotMetrics) Snapshot() Snapshot {
	s := Snapshot{
		Arrivals:         m.Arrivals,
		IdleSlots:        m.IdleSlots,
		SuccessSlots:     m.SuccessSlots,
		CollisionSlots:   m.CollisionSlots,
		Splits:           m.Splits,
		Discards:         m.Discards,
		Transmissions:    m.Transmissions,
		Accepted:         m.Accepted,
		Late:             m.Late,
		PendingLost:      m.PendingLost,
		PendingCensored:  m.PendingCensored,
		Erasures:         m.Erasures,
		FalseCollisions:  m.FalseCollisions,
		MissedCollisions: m.MissedCollisions,
		Recoveries:       m.Recoveries,
		Desyncs:          m.Desyncs,
		IdleTime:         m.IdleTime,
		BusyTime:         m.BusyTime,
		CollisionTime:    m.CollisionTime,
		Utilization:      m.Utilization(),
		Loss:             m.Loss(),
		DiscardFraction:  m.DiscardFraction(),
	}
	if m.WaitHist != nil {
		s.WaitCount = m.WaitHist.N()
		s.WaitMean = m.WaitHist.Mean()
	}
	return s
}

// Var returns the collector as an expvar variable rendering the current
// Snapshot as JSON.
func (m *SlotMetrics) Var() expvar.Var {
	return expvar.Func(func() any { return m.Snapshot() })
}

// Publish registers the collector in the process-wide expvar registry
// under the given name (visible on /debug/vars when an HTTP server is
// running).  Unlike expvar.Publish, re-publishing under a name this
// package already owns is idempotent — the new collector atomically
// replaces the old one behind the same expvar name — so a long-running
// server can run repeated instrumented simulations without crashing.
// Publishing over a name some other package registered directly with
// expvar returns an error instead of panicking.
func (m *SlotMetrics) Publish(name string) error { return PublishVar(name, m.Var()) }

// published maps names this package has registered with expvar to the
// mutable slot behind them, making re-publication a pointer swap instead
// of a second (panicking) expvar.Publish call.
var published = struct {
	sync.Mutex
	slots map[string]*varSlot
}{slots: map[string]*varSlot{}}

// varSlot is the indirection expvar actually holds: its current variable
// can be swapped at any time, concurrently with /debug/vars renders.
// The interface is boxed so atomic.Value always stores one concrete type.
type varSlot struct{ v atomic.Value }

type boxedVar struct{ v expvar.Var }

// String implements expvar.Var by delegating to the current variable.
func (s *varSlot) String() string { return s.v.Load().(boxedVar).v.String() }

// PublishVar registers v in the process-wide expvar registry under the
// given name, replacing any variable previously published *through this
// function* under the same name.  It returns an error — instead of
// expvar.Publish's panic — when the name is already taken by a variable
// registered outside this package.
func PublishVar(name string, v expvar.Var) error {
	published.Lock()
	defer published.Unlock()
	if slot, ok := published.slots[name]; ok {
		slot.v.Store(boxedVar{v})
		return nil
	}
	if expvar.Get(name) != nil {
		return fmt.Errorf("metrics: expvar name %q is already taken by a foreign variable", name)
	}
	slot := &varSlot{}
	slot.v.Store(boxedVar{v})
	expvar.Publish(name, slot)
	published.slots[name] = slot
	return nil
}

// Format renders the counters as an aligned, human-readable text block —
// the -metrics exposition of the commands.
func (m *SlotMetrics) Format() string {
	var b strings.Builder
	totalSlots := m.IdleSlots + m.SuccessSlots + m.CollisionSlots
	fmt.Fprintf(&b, "slots         idle=%d success=%d collision=%d (total=%d, splits=%d)\n",
		m.IdleSlots, m.SuccessSlots, m.CollisionSlots, totalSlots, m.Splits)
	fmt.Fprintf(&b, "channel time  idle=%.6g busy=%.6g collision=%.6g (elapsed=%.6g)\n",
		m.IdleTime, m.BusyTime, m.CollisionTime, m.ElapsedTime())
	fmt.Fprintf(&b, "utilization   %.4f\n", m.Utilization())
	fmt.Fprintf(&b, "messages      arrivals=%d transmitted=%d accepted=%d late=%d discarded=%d pending(lost=%d censored=%d)\n",
		m.Arrivals, m.Transmissions, m.Accepted, m.Late, m.Discards, m.PendingLost, m.PendingCensored)
	fmt.Fprintf(&b, "loss          %.5f (discard fraction %.5f)\n", m.Loss(), m.DiscardFraction())
	if m.Faults()+m.Recoveries+m.Desyncs > 0 {
		fmt.Fprintf(&b, "faults        erasures=%d false-collisions=%d missed-collisions=%d recoveries=%d desyncs=%d\n",
			m.Erasures, m.FalseCollisions, m.MissedCollisions, m.Recoveries, m.Desyncs)
	}
	if m.WaitHist != nil && m.WaitHist.N() > 0 {
		fmt.Fprintf(&b, "accepted wait n=%d mean=%.4g p50=%.4g p95=%.4g p99=%.4g\n",
			m.WaitHist.N(), m.WaitHist.Mean(),
			m.WaitHist.Quantile(0.50), m.WaitHist.Quantile(0.95), m.WaitHist.Quantile(0.99))
	}
	return b.String()
}
