package numerics

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"windowctl/internal/rngutil"
)

func TestFFTRoundTrip(t *testing.T) {
	r := rngutil.New(31)
	a := make([]complex128, 64)
	orig := make([]complex128, 64)
	for i := range a {
		a[i] = complex(r.Normal(), r.Normal())
		orig[i] = a[i]
	}
	FFT(a, false)
	FFT(a, true)
	for i := range a {
		if cmplx.Abs(a[i]-orig[i]) > 1e-10 {
			t.Fatalf("round trip failed at %d: %v vs %v", i, a[i], orig[i])
		}
	}
}

func TestFFTKnownTransform(t *testing.T) {
	// Unit impulse transforms to all-ones.
	a := make([]complex128, 8)
	a[0] = 1
	FFT(a, false)
	for i, v := range a {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse transform wrong at %d: %v", i, v)
		}
	}
	// Constant transforms to an impulse of height n.
	b := make([]complex128, 8)
	for i := range b {
		b[i] = 1
	}
	FFT(b, false)
	if cmplx.Abs(b[0]-8) > 1e-12 {
		t.Fatalf("DC bin %v", b[0])
	}
	for i := 1; i < 8; i++ {
		if cmplx.Abs(b[i]) > 1e-12 {
			t.Fatalf("non-DC bin %d = %v", i, b[i])
		}
	}
}

func TestFFTParseval(t *testing.T) {
	r := rngutil.New(32)
	a := make([]complex128, 128)
	sumT := 0.0
	for i := range a {
		a[i] = complex(r.Normal(), 0)
		sumT += real(a[i]) * real(a[i])
	}
	FFT(a, false)
	sumF := 0.0
	for _, v := range a {
		sumF += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(sumF/float64(len(a))-sumT) > 1e-8 {
		t.Fatalf("Parseval violated: %v vs %v", sumF/128, sumT)
	}
}

func TestFFTPanicsOnBadLength(t *testing.T) {
	for _, n := range []int{0, 3, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("length %d accepted", n)
				}
			}()
			FFT(make([]complex128, n), false)
		}()
	}
}

func TestLinearConvolveSmall(t *testing.T) {
	got := LinearConvolve([]float64{1, 2, 3}, []float64{4, 5})
	want := []float64{4, 13, 22, 15}
	if len(got) != len(want) {
		t.Fatalf("length %d", len(got))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("conv[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if LinearConvolve(nil, []float64{1}) != nil {
		t.Fatal("empty input should give nil")
	}
}

func TestConvolveFFTMatchesDirect(t *testing.T) {
	step, n := 0.01, 700
	f := Tabulate(func(x float64) float64 { return math.Exp(-x) }, step, n)
	h := Tabulate(func(x float64) float64 { return 2 * math.Exp(-2*x) }, step, n)
	direct := f.Convolve(h)
	fast := f.ConvolveFFT(h)
	for i := 0; i < n; i++ {
		if math.Abs(direct.Y[i]-fast.Y[i]) > 1e-9 {
			t.Fatalf("mismatch at %d: direct %v, fft %v", i, direct.Y[i], fast.Y[i])
		}
	}
}

func TestConvolveFFTPanicsOnShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch accepted")
		}
	}()
	NewGrid(1, 8).ConvolveFFT(NewGrid(1, 9))
}

// Property: FFT convolution equals direct convolution on random densities.
func TestConvolveFFTEquivalenceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rngutil.New(seed)
		n := 128 + int(seed%100)
		a := NewGrid(0.05, n)
		b := NewGrid(0.05, n)
		for i := 0; i < n; i++ {
			a.Y[i] = r.Float64()
			b.Y[i] = r.Float64()
		}
		d := a.Convolve(b)
		q := a.ConvolveFFT(b)
		for i := 0; i < n; i++ {
			if math.Abs(d.Y[i]-q.Y[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// The Convolver plan must reproduce ConvolveFFT exactly: it caches the
// kernel transform but performs the same arithmetic.
func TestConvolverMatchesConvolveFFT(t *testing.T) {
	step, n := 0.01, 700
	f := Tabulate(func(x float64) float64 { return math.Exp(-x) }, step, n)
	h := Tabulate(func(x float64) float64 { return 2 * math.Exp(-2*x) }, step, n)
	want := f.ConvolveFFT(h)
	cv := NewConvolver(h)
	got := cv.Convolve(f)
	for i := 0; i < n; i++ {
		if got.Y[i] != want.Y[i] {
			t.Fatalf("plan result differs at %d: %v vs %v", i, got.Y[i], want.Y[i])
		}
	}
	// Repeated application through the same plan stays exact (scratch is
	// reused across calls).
	want2 := want.ConvolveFFT(h)
	got2 := cv.Convolve(got)
	for i := 0; i < n; i++ {
		if got2.Y[i] != want2.Y[i] {
			t.Fatalf("second application differs at %d: %v vs %v", i, got2.Y[i], want2.Y[i])
		}
	}
}

// In-place aliasing (dst == g) is the zero-allocation mode used by the
// series loops; it must agree with the out-of-place result.
func TestConvolverInPlaceAliasing(t *testing.T) {
	step, n := 0.02, 300
	h := Tabulate(func(x float64) float64 { return math.Exp(-x / 2) }, step, n)
	cv := NewConvolver(h)
	conv := h.Clone()
	want := h.Clone()
	for iter := 0; iter < 5; iter++ {
		want = cv.Convolve(want)
		cv.ConvolveInto(conv, conv)
		for i := 0; i < n; i++ {
			if conv.Y[i] != want.Y[i] {
				t.Fatalf("iteration %d: aliased result differs at %d: %v vs %v",
					iter, i, conv.Y[i], want.Y[i])
			}
		}
	}
}

func TestConvolverPanicsOnShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch accepted")
		}
	}()
	NewConvolver(NewGrid(1, 8)).Convolve(NewGrid(1, 9))
}

func TestConvolveFFTCountAdvances(t *testing.T) {
	h := Tabulate(func(x float64) float64 { return math.Exp(-x) }, 0.1, 64)
	before := ConvolveFFTCount()
	h.ConvolveFFT(h)
	NewConvolver(h).Convolve(h)
	if got := ConvolveFFTCount() - before; got < 2 {
		t.Fatalf("counter advanced by %d, want >= 2", got)
	}
}

func BenchmarkConvolveFFT(b *testing.B) {
	f := Tabulate(func(x float64) float64 { return math.Exp(-x) }, 0.01, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.ConvolveFFT(f)
	}
}

// BenchmarkConvolverInPlace measures the planned, buffer-reusing path the
// eq 4.7 series loops run per term; compare against BenchmarkConvolveFFT.
func BenchmarkConvolverInPlace(b *testing.B) {
	f := Tabulate(func(x float64) float64 { return math.Exp(-x) }, 0.01, 4096)
	cv := NewConvolver(f)
	conv := f.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cv.ConvolveInto(conv, conv)
	}
}
