package numerics

import (
	"math"
	"math/bits"
)

// FFT computes the in-place radix-2 Cooley–Tukey discrete Fourier
// transform of a, whose length must be a power of two.  When inverse is
// true the inverse transform (including the 1/n scaling) is computed.
func FFT(a []complex128, inverse bool) {
	n := len(a)
	if n == 0 || n&(n-1) != 0 {
		panic("numerics: FFT length must be a positive power of two")
	}
	// Bit-reversal permutation.
	shift := bits.LeadingZeros(uint(n)) + 1
	for i := 0; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> shift)
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		ang := 2 * math.Pi / float64(size)
		if !inverse {
			ang = -ang
		}
		wBase := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			half := size / 2
			for k := 0; k < half; k++ {
				u := a[start+k]
				v := a[start+k+half] * w
				a[start+k] = u + v
				a[start+k+half] = u - v
				w *= wBase
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range a {
			a[i] *= inv
		}
	}
}

// LinearConvolve returns the linear convolution of x and y (length
// len(x)+len(y)−1) via FFT.
func LinearConvolve(x, y []float64) []float64 {
	if len(x) == 0 || len(y) == 0 {
		return nil
	}
	outLen := len(x) + len(y) - 1
	n := 1
	for n < outLen {
		n <<= 1
	}
	fx := make([]complex128, n)
	fy := make([]complex128, n)
	for i, v := range x {
		fx[i] = complex(v, 0)
	}
	for i, v := range y {
		fy[i] = complex(v, 0)
	}
	FFT(fx, false)
	FFT(fy, false)
	for i := range fx {
		fx[i] *= fy[i]
	}
	FFT(fx, true)
	out := make([]float64, outLen)
	for i := range out {
		out[i] = real(fx[i])
	}
	return out
}

// ConvolveFFT is the FFT-accelerated equivalent of Grid.Convolve: it
// returns the trapezoid-weighted density convolution
// (f*h)(x) = ∫₀ˣ f(x−u)h(u) du tabulated on the receiver's support.  Both
// grids must share the same step and length.  Results agree with Convolve
// to rounding error but cost O(n·log n) instead of O(n²).
func (g *Grid) ConvolveFFT(h *Grid) *Grid {
	if h.Step != g.Step || len(h.Y) != len(g.Y) {
		panic("numerics: ConvolveFFT requires equal-shape grids")
	}
	n := len(g.Y)
	plain := LinearConvolve(g.Y, h.Y)
	out := NewGrid(g.Step, n)
	for i := 1; i < n; i++ {
		// Trapezoid endpoint correction: the rectangle sum counts the
		// j = 0 and j = i endpoints with weight 1; trapezoid wants ½.
		v := plain[i] - 0.5*g.Y[i]*h.Y[0] - 0.5*g.Y[0]*h.Y[i]
		out.Y[i] = v * g.Step
	}
	out.Y[0] = 0
	return out
}
