package numerics

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// FFT computes the in-place radix-2 Cooley–Tukey discrete Fourier
// transform of a, whose length must be a power of two.  When inverse is
// true the inverse transform (including the 1/n scaling) is computed.
func FFT(a []complex128, inverse bool) {
	n := len(a)
	if n == 0 || n&(n-1) != 0 {
		panic("numerics: FFT length must be a positive power of two")
	}
	// Bit-reversal permutation.
	shift := bits.LeadingZeros(uint(n)) + 1
	for i := 0; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> shift)
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		ang := 2 * math.Pi / float64(size)
		if !inverse {
			ang = -ang
		}
		wBase := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			half := size / 2
			for k := 0; k < half; k++ {
				u := a[start+k]
				v := a[start+k+half] * w
				a[start+k] = u + v
				a[start+k+half] = u - v
				w *= wBase
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range a {
			a[i] *= inv
		}
	}
}

// convolveFFTCalls counts every FFT-based density convolution performed
// (Grid.ConvolveFFT and Convolver.ConvolveInto).  The batched multi-K
// solvers in internal/queueing exist to shrink this number; tests and
// benchmarks read it through ConvolveFFTCount to assert the reduction.
var convolveFFTCalls atomic.Uint64

// ConvolveFFTCount returns the number of FFT convolutions performed by the
// process so far.  Subtract two readings to count the convolutions of a
// region of interest (meaningful only when no concurrent convolutions run).
func ConvolveFFTCount() uint64 { return convolveFFTCalls.Load() }

// fftScratch pools complex scratch buffers keyed by transform size, so the
// convolution series loops (hundreds of transforms of identical size per
// solve) reuse two buffers instead of allocating per call.
var fftScratch sync.Map // int -> *sync.Pool of *[]complex128

func getScratch(n int) []complex128 {
	p, ok := fftScratch.Load(n)
	if !ok {
		p, _ = fftScratch.LoadOrStore(n, &sync.Pool{New: func() any {
			buf := make([]complex128, n)
			return &buf
		}})
	}
	return *p.(*sync.Pool).Get().(*[]complex128)
}

func putScratch(n int, buf []complex128) {
	if p, ok := fftScratch.Load(n); ok {
		p.(*sync.Pool).Put(&buf)
	}
}

// fftSize returns the power-of-two transform length covering a linear
// convolution of the given output length.
func fftSize(outLen int) int {
	n := 1
	for n < outLen {
		n <<= 1
	}
	return n
}

// LinearConvolve returns the linear convolution of x and y (length
// len(x)+len(y)−1) via FFT.  Scratch transforms come from a shared
// size-keyed pool, so repeated equal-size convolutions do not allocate
// beyond the result slice.
func LinearConvolve(x, y []float64) []float64 {
	if len(x) == 0 || len(y) == 0 {
		return nil
	}
	outLen := len(x) + len(y) - 1
	n := fftSize(outLen)
	fx := getScratch(n)
	fy := getScratch(n)
	fillPadded(fx, x)
	fillPadded(fy, y)
	FFT(fx, false)
	FFT(fy, false)
	for i := range fx {
		fx[i] *= fy[i]
	}
	FFT(fx, true)
	out := make([]float64, outLen)
	for i := range out {
		out[i] = real(fx[i])
	}
	putScratch(n, fx)
	putScratch(n, fy)
	return out
}

// fillPadded copies x into the head of buf and zeroes the rest.
func fillPadded(buf []complex128, x []float64) {
	for i := range buf {
		if i < len(x) {
			buf[i] = complex(x[i], 0)
		} else {
			buf[i] = 0
		}
	}
}

// ConvolveFFT is the FFT-accelerated equivalent of Grid.Convolve: it
// returns the trapezoid-weighted density convolution
// (f*h)(x) = ∫₀ˣ f(x−u)h(u) du tabulated on the receiver's support.  Both
// grids must share the same step and length.  Results agree with Convolve
// to rounding error but cost O(n·log n) instead of O(n²).
//
// When the same kernel h is applied repeatedly (the β⁽ⁱ⁾ series of eq 4.7),
// a Convolver is cheaper: it caches the kernel transform and its scratch.
func (g *Grid) ConvolveFFT(h *Grid) *Grid {
	if h.Step != g.Step || len(h.Y) != len(g.Y) {
		panic("numerics: ConvolveFFT requires equal-shape grids")
	}
	convolveFFTCalls.Add(1)
	n := len(g.Y)
	plain := LinearConvolve(g.Y, h.Y)
	out := NewGrid(g.Step, n)
	for i := 1; i < n; i++ {
		// Trapezoid endpoint correction: the rectangle sum counts the
		// j = 0 and j = i endpoints with weight 1; trapezoid wants ½.
		v := plain[i] - 0.5*g.Y[i]*h.Y[0] - 0.5*g.Y[0]*h.Y[i]
		out.Y[i] = v * g.Step
	}
	out.Y[0] = 0
	return out
}

// Convolver repeatedly convolves grids against one fixed kernel.  It is
// the "FFT plan" of the eq 4.7 series loops: the kernel's transform is
// computed once at construction and every ConvolveInto call then costs a
// single forward and inverse transform with zero heap allocations, versus
// ConvolveFFT's two forward transforms plus fresh buffers.  Results are
// identical to g.ConvolveFFT(kernel) bit for bit (the arithmetic is the
// same; only the kernel transform is cached).
//
// A Convolver is not safe for concurrent use; give each goroutine its own.
type Convolver struct {
	kernel *Grid
	n      int          // transform size
	fk     []complex128 // cached FFT of the zero-padded kernel
	buf    []complex128 // scratch for the varying operand
}

// NewConvolver builds a convolution plan for the given kernel grid.
func NewConvolver(kernel *Grid) *Convolver {
	l := len(kernel.Y)
	n := fftSize(2*l - 1)
	fk := make([]complex128, n)
	fillPadded(fk, kernel.Y)
	FFT(fk, false)
	return &Convolver{kernel: kernel, n: n, fk: fk, buf: make([]complex128, n)}
}

// Convolve returns g convolved with the plan's kernel in a fresh grid,
// exactly as g.ConvolveFFT(kernel) would.
func (c *Convolver) Convolve(g *Grid) *Grid {
	return c.ConvolveInto(NewGrid(c.kernel.Step, len(c.kernel.Y)), g)
}

// ConvolveInto writes g convolved with the plan's kernel into dst and
// returns dst.  dst may alias g (in-place update of a running convolution
// power) but must not alias the kernel.  All three grids must share the
// kernel's shape.
func (c *Convolver) ConvolveInto(dst, g *Grid) *Grid {
	k := c.kernel
	if g.Step != k.Step || len(g.Y) != len(k.Y) || dst.Step != k.Step || len(dst.Y) != len(k.Y) {
		panic("numerics: Convolver requires equal-shape grids")
	}
	convolveFFTCalls.Add(1)
	fillPadded(c.buf, g.Y)
	FFT(c.buf, false)
	for i := range c.buf {
		c.buf[i] *= c.fk[i]
	}
	FFT(c.buf, true)
	n := len(g.Y)
	g0, k0 := g.Y[0], k.Y[0]
	for i := 1; i < n; i++ {
		// Same trapezoid endpoint correction as ConvolveFFT; g.Y[i] is
		// read before dst.Y[i] is written, which keeps dst==g aliasing
		// safe.
		v := real(c.buf[i]) - 0.5*g.Y[i]*k0 - 0.5*g0*k.Y[i]
		dst.Y[i] = v * g.Step
	}
	dst.Y[0] = 0
	return dst
}
