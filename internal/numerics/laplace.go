package numerics

import (
	"math"
	"math/cmplx"
)

// LaplaceFunc is an ordinary Laplace transform L(s) = ∫₀^∞ e^(−st) f(t) dt,
// evaluated at complex s with Re(s) > 0.
type LaplaceFunc func(s complex128) complex128

// InvertLaplaceEuler numerically inverts the ordinary Laplace transform L
// at the point t > 0 using the Euler algorithm of Abate and Whitt (ORSA J.
// Computing, 1995): a Bromwich-integral trapezoid with binomial (Euler)
// acceleration of the alternating tail.  With the standard parameters used
// here (A = 18.4, n = 38, m = 11) the discretization error is about 1e-8
// for transforms of smooth, bounded functions — ample for tabulating the
// waiting-time distributions of the LCFS baseline.
func InvertLaplaceEuler(L LaplaceFunc, t float64) float64 {
	if t <= 0 {
		panic("numerics: InvertLaplaceEuler requires t > 0")
	}
	const (
		aParam = 18.4
		n      = 38 // plain terms before Euler averaging
		m      = 11 // binomial averaging depth
	)
	a := aParam / (2 * t)
	h := math.Pi / t

	// Partial sums s_k of the alternating series.
	partial := make([]float64, n+m+1)
	sum := 0.5 * real(L(complex(a, 0)))
	sign := -1.0
	for k := 1; k <= n+m; k++ {
		term := sign * real(L(complex(a, float64(k)*h)))
		sum += term
		partial[k] = sum
		sign = -sign
	}
	partial[0] = 0.5 * real(L(complex(a, 0)))
	// Recompute partial[1..] including partial[0] base (the loop above
	// already accumulated from the k=0 base, so partial[k] is correct for
	// k >= 1; fix k = 0 which the loop never wrote).
	// Euler (binomial) average of partial[n..n+m].
	avg := 0.0
	binom := 1.0 // C(m, 0)
	for j := 0; j <= m; j++ {
		avg += binom * partial[n+j]
		binom = binom * float64(m-j) / float64(j+1)
	}
	avg /= math.Exp2(float64(m))
	return math.Exp(aParam/2) / t * avg
}

// InvertLaplaceGaver inverts the Laplace transform L at t > 0 using the
// Gaver–Stehfest method with 2·m real evaluations (no complex arithmetic).
// In IEEE double precision m = 7 is about the practical limit; accuracy is
// roughly 1e-5 for smooth functions.  Useful as an independent cross-check
// of the Euler inversion.
func InvertLaplaceGaver(L func(s float64) float64, t float64) float64 {
	if t <= 0 {
		panic("numerics: InvertLaplaceGaver requires t > 0")
	}
	const m = 7
	weights := stehfestWeights(m)
	ln2t := math.Ln2 / t
	sum := 0.0
	for k := 1; k <= 2*m; k++ {
		sum += weights[k] * L(float64(k)*ln2t)
	}
	return ln2t * sum
}

// stehfestWeights returns the Stehfest coefficients ζ_1..ζ_{2m} (index 0
// unused).
func stehfestWeights(m int) []float64 {
	w := make([]float64, 2*m+1)
	for k := 1; k <= 2*m; k++ {
		sign := 1.0
		if (k+m)%2 == 1 {
			sign = -1
		}
		sum := 0.0
		jLo := (k + 1) / 2
		jHi := k
		if jHi > m {
			jHi = m
		}
		for j := jLo; j <= jHi; j++ {
			num := math.Pow(float64(j), float64(m)) * factorial(2*j)
			den := factorial(m-j) * factorial(j) * factorial(j-1) * factorial(k-j) * factorial(2*j-k)
			sum += num / den
		}
		w[k] = sign * sum
	}
	return w
}

func factorial(n int) float64 {
	f := 1.0
	for i := 2; i <= n; i++ {
		f *= float64(i)
	}
	return f
}

// CDFFromLST tabulates the CDF F(t) of a non-negative random variable from
// its Laplace–Stieltjes transform φ(s) = E[e^{−sX}], using the identity
// L{F}(s) = φ(s)/s and Euler inversion.  Results are clamped to [0, 1].
func CDFFromLST(phi func(s complex128) complex128, t float64) float64 {
	if t <= 0 {
		return 0
	}
	v := InvertLaplaceEuler(func(s complex128) complex128 { return phi(s) / s }, t)
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// SolveFunctionalFixedPoint solves θ = G(θ, s) for a complex contraction G
// (used for the M/G/1 busy-period transform θ(s) = B*(s + λ − λθ(s))).
// It iterates from θ₀ = 0 until successive values differ by less than tol
// in modulus, or maxIter iterations.
func SolveFunctionalFixedPoint(G func(theta complex128) complex128, tol float64, maxIter int) complex128 {
	theta := complex(0, 0)
	for i := 0; i < maxIter; i++ {
		next := G(theta)
		if cmplx.Abs(next-theta) < tol {
			return next
		}
		theta = next
	}
	return theta
}
