package numerics

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v (tol %v)", what, got, want, tol)
	}
}

// --- Grid -----------------------------------------------------------------

func TestGridTabulateAndAt(t *testing.T) {
	g := Tabulate(func(x float64) float64 { return 2 * x }, 0.5, 5) // 0..2
	almost(t, g.At(0.75), 1.5, 1e-12, "linear interpolation")
	almost(t, g.At(-1), 0, 1e-12, "clamp below")
	almost(t, g.At(10), 4, 1e-12, "clamp above")
	if g.Len() != 5 {
		t.Fatal("len")
	}
	almost(t, g.X(3), 1.5, 1e-12, "abscissa")
}

func TestGridIntegral(t *testing.T) {
	// ∫₀² 2x dx = 4; trapezoid is exact for linear functions.
	g := Tabulate(func(x float64) float64 { return 2 * x }, 0.01, 201)
	almost(t, g.Integral(), 4, 1e-9, "full integral")
	almost(t, g.IntegralTo(1), 1, 1e-9, "partial integral")
	almost(t, g.IntegralTo(0.505), 0.505*0.505, 1e-6, "fractional endpoint")
	almost(t, g.IntegralTo(-1), 0, 0, "negative endpoint")
	almost(t, g.IntegralTo(100), 4, 1e-9, "clamped endpoint")
}

func TestGridCumulativeIntegral(t *testing.T) {
	g := Tabulate(func(x float64) float64 { return 3 * x * x }, 0.001, 1001)
	ci := g.CumulativeIntegral()
	// ∫₀ˣ 3u² du = x³.
	almost(t, ci.At(0.5), 0.125, 1e-5, "cumulative at 0.5")
	almost(t, ci.At(1.0), 1, 1e-5, "cumulative at 1")
}

func TestGridConvolveExponentials(t *testing.T) {
	// Exp(1) density convolved with itself = Erlang-2 density x·e^{−x}.
	step, n := 0.005, 2001
	f := Tabulate(func(x float64) float64 { return math.Exp(-x) }, step, n)
	c := f.Convolve(f)
	for _, x := range []float64{0.5, 1, 2, 4} {
		want := x * math.Exp(-x)
		almost(t, c.At(x), want, 2e-3, "Erlang-2 density")
	}
}

func TestGridConvolveMassConservation(t *testing.T) {
	// Convolution of two densities, truncated at T: mass over [0,T] must
	// not exceed 1 and should approach the true convolution mass.
	step, n := 0.01, 1200
	f := Tabulate(func(x float64) float64 { return 2 * math.Exp(-2*x) }, step, n)
	c := f.Convolve(f)
	m := c.Integral()
	if m > 1.0001 {
		t.Fatalf("convolved mass %v exceeds 1", m)
	}
	if m < 0.99 {
		t.Fatalf("convolved mass %v too small (support truncation too harsh)", m)
	}
}

func TestGridScaleAddNormalize(t *testing.T) {
	g := Tabulate(func(x float64) float64 { return 1 }, 0.1, 11) // ∫ = 1 over [0,1]
	h := g.Clone()
	g.Scale(2)
	almost(t, g.Integral(), 2, 1e-12, "scale")
	g.AddScaled(-1, h.Clone().Scale(2))
	almost(t, g.Integral(), 0, 1e-12, "add scaled")
	h.Scale(5)
	mass := h.Normalize()
	almost(t, mass, 5, 1e-12, "normalize returns prior mass")
	almost(t, h.Integral(), 1, 1e-12, "normalized mass")
}

func TestGridMean(t *testing.T) {
	// Uniform density on [0,1]: mean 1/2.
	g := Tabulate(func(x float64) float64 { return 1 }, 0.001, 1001)
	almost(t, g.Mean(), 0.5, 1e-6, "uniform mean")
}

func TestGridPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { NewGrid(0, 5) },
		func() { NewGrid(1, 0) },
		func() { NewGrid(1, 3).AddScaled(1, NewGrid(2, 3)) },
		func() { NewGrid(1, 3).Convolve(NewGrid(2, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// --- Quadrature -----------------------------------------------------------

func TestTrapezoidAndSimpson(t *testing.T) {
	f := func(x float64) float64 { return math.Sin(x) }
	want := 1 - math.Cos(2)
	almost(t, Trapezoid(f, 0, 2, 2000), want, 1e-6, "trapezoid sin")
	almost(t, Simpson(f, 0, 2, 200), want, 1e-9, "simpson sin")
	almost(t, Simpson(f, 0, 2, 201), want, 1e-9, "simpson odd n rounds up")
	almost(t, Trapezoid(f, 1, 1, 10), 0, 0, "empty interval")
}

func TestAdaptiveSimpson(t *testing.T) {
	// A peaked integrand that defeats coarse fixed grids.
	f := func(x float64) float64 { return 1 / (1e-3 + (x-0.3)*(x-0.3)) }
	want := (math.Atan(0.7/math.Sqrt(1e-3)) + math.Atan(0.3/math.Sqrt(1e-3))) / math.Sqrt(1e-3)
	got := AdaptiveSimpson(f, 0, 1, 1e-9, 40)
	almost(t, got, want, 1e-6, "adaptive peaked integrand")
}

func TestBisect(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, root, math.Sqrt2, 1e-10, "sqrt2 root")

	if _, err := Bisect(func(x float64) float64 { return 1 + x*x }, 0, 1, 1e-9); err == nil {
		t.Fatal("unbracketed root accepted")
	}
	// Exact endpoints.
	r, err := Bisect(func(x float64) float64 { return x }, 0, 1, 1e-9)
	if err != nil || r != 0 {
		t.Fatalf("endpoint root: %v, %v", r, err)
	}
}

func TestGoldenSection(t *testing.T) {
	min := GoldenSection(func(x float64) float64 { return (x - 1.7) * (x - 1.7) }, 0, 5, 1e-9)
	almost(t, min, 1.7, 1e-7, "quadratic minimum")
	// Reversed bounds are tolerated.
	min = GoldenSection(func(x float64) float64 { return (x - 1.7) * (x - 1.7) }, 5, 0, 1e-9)
	almost(t, min, 1.7, 1e-7, "reversed bounds")
}

func TestMinimizeGrid(t *testing.T) {
	x, v := MinimizeGrid(func(x float64) float64 { return math.Abs(x - 0.32) }, 0, 1, 100)
	almost(t, x, 0.32, 0.005, "grid minimizer")
	almost(t, v, 0, 0.005, "grid minimum value")
}

func TestFixedPoint(t *testing.T) {
	// x = cos(x) has the Dottie fixed point ~0.739085.
	x, err := FixedPoint(math.Cos, 0.5, 1, 1e-12, 200)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, x, 0.7390851332151607, 1e-9, "Dottie number")

	// Divergent map errors out.
	if _, err := FixedPoint(func(x float64) float64 { return 2*x + 1 }, 1, 1, 1e-12, 50); err == nil {
		t.Fatal("divergent fixed point accepted")
	}
	if _, err := FixedPoint(math.Cos, 0.5, 0, 1e-12, 50); err == nil {
		t.Fatal("invalid damping accepted")
	}
	// Damped iteration also converges.
	x, err = FixedPoint(math.Cos, 0.5, 0.5, 1e-12, 500)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, x, 0.7390851332151607, 1e-8, "damped Dottie")
}

func TestGeometricSeriesSum(t *testing.T) {
	// Σ ρ^i with a(i)=1: 1/(1−ρ).
	sum, terms := GeometricSeriesSum(0.5, func(int) float64 { return 1 }, 1, 1e-12, 1000)
	almost(t, sum, 2, 1e-9, "plain geometric series")
	if terms <= 1 {
		t.Fatal("terms not counted")
	}
	// ρ=1 with decaying a(i) = 2^{-i}: Σ = 2.
	sum, _ = GeometricSeriesSum(1, func(i int) float64 { return math.Exp2(-float64(i)) }, 1, 1e-12, 1000)
	almost(t, sum, 2, 1e-9, "rho=1 decaying series")
}

// --- Laplace inversion -----------------------------------------------------

func TestInvertLaplaceEulerKnownTransforms(t *testing.T) {
	cases := []struct {
		name string
		L    LaplaceFunc
		f    func(float64) float64
	}{
		{"exp(-t)", func(s complex128) complex128 { return 1 / (s + 1) },
			func(t float64) float64 { return math.Exp(-t) }},
		{"t*exp(-t)", func(s complex128) complex128 { return 1 / ((s + 1) * (s + 1)) },
			func(t float64) float64 { return t * math.Exp(-t) }},
		{"sin(t)", func(s complex128) complex128 { return 1 / (s*s + 1) },
			math.Sin},
		{"constant 1", func(s complex128) complex128 { return 1 / s },
			func(float64) float64 { return 1 }},
	}
	for _, tc := range cases {
		for _, x := range []float64{0.25, 0.5, 1, 2, 5} {
			got := InvertLaplaceEuler(tc.L, x)
			want := tc.f(x)
			almost(t, got, want, 1e-6, tc.name)
		}
	}
}

func TestInvertLaplaceGaverKnownTransforms(t *testing.T) {
	got := InvertLaplaceGaver(func(s float64) float64 { return 1 / (s + 1) }, 1.5)
	almost(t, got, math.Exp(-1.5), 1e-4, "Gaver exp(-t)")
	got = InvertLaplaceGaver(func(s float64) float64 { return 1 / s }, 2)
	almost(t, got, 1, 1e-4, "Gaver constant")
}

func TestEulerGaverAgree(t *testing.T) {
	// Both inversions of the Erlang-3 CDF transform must agree.
	lst := func(s complex128) complex128 {
		return cmplx.Pow(2/(2+s), 3)
	}
	for _, x := range []float64{0.5, 1, 2, 4} {
		e := InvertLaplaceEuler(func(s complex128) complex128 { return lst(s) / s }, x)
		g := InvertLaplaceGaver(func(s float64) float64 { return real(lst(complex(s, 0))) / s }, x)
		almost(t, e, g, 1e-3, "Euler vs Gaver")
	}
}

func TestCDFFromLST(t *testing.T) {
	// Exponential(1): F(t) = 1 − e^{−t}.
	phi := func(s complex128) complex128 { return 1 / (1 + s) }
	for _, x := range []float64{0.1, 0.5, 1, 3} {
		almost(t, CDFFromLST(phi, x), 1-math.Exp(-x), 1e-6, "exp CDF from LST")
	}
	if CDFFromLST(phi, 0) != 0 {
		t.Fatal("CDF at 0 should be 0")
	}
	if CDFFromLST(phi, -1) != 0 {
		t.Fatal("CDF at negative t should be 0")
	}
}

func TestCDFFromLSTClamped(t *testing.T) {
	// Deterministic(1) has an oscillatory inversion near the jump; clamping
	// must keep values in [0,1].
	phi := func(s complex128) complex128 { return cmplx.Exp(-s) }
	for x := 0.05; x < 3; x += 0.05 {
		v := CDFFromLST(phi, x)
		if v < 0 || v > 1 {
			t.Fatalf("unclamped CDF value %v at %v", v, x)
		}
	}
}

func TestSolveFunctionalFixedPoint(t *testing.T) {
	// Busy period of M/M/1: θ(s) = μ/(μ+s+λ−λθ); closed form known.
	lambda, mu, s := 0.5, 1.0, 0.3
	theta := SolveFunctionalFixedPoint(func(th complex128) complex128 {
		return complex(mu, 0) / (complex(mu+s+lambda, 0) - complex(lambda, 0)*th)
	}, 1e-14, 10000)
	// θ = [ (λ+μ+s) − sqrt((λ+μ+s)² − 4λμ) ] / (2λ).
	a := lambda + mu + s
	want := (a - math.Sqrt(a*a-4*lambda*mu)) / (2 * lambda)
	almost(t, real(theta), want, 1e-9, "M/M/1 busy period LST")
	almost(t, imag(theta), 0, 1e-12, "real transform stays real")
}

func TestInversionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for t<=0")
		}
	}()
	InvertLaplaceEuler(func(s complex128) complex128 { return 1 / s }, 0)
}

// Property: trapezoid and Simpson agree on smooth integrands.
func TestQuadratureAgreementProperty(t *testing.T) {
	f := func(a, b float64) bool {
		lo, hi := math.Mod(math.Abs(a), 3), math.Mod(math.Abs(a), 3)+math.Mod(math.Abs(b), 3)+0.1
		g := func(x float64) float64 { return math.Exp(-x) * math.Cos(x) }
		t1 := Trapezoid(g, lo, hi, 4000)
		s1 := Simpson(g, lo, hi, 400)
		return math.Abs(t1-s1) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Grid.IntegralTo is monotone in its endpoint for non-negative
// integrands.
func TestIntegralMonotoneProperty(t *testing.T) {
	g := Tabulate(func(x float64) float64 { return math.Abs(math.Sin(3 * x)) }, 0.01, 500)
	f := func(a, b float64) bool {
		x := math.Mod(math.Abs(a), 5)
		y := x + math.Mod(math.Abs(b), 5)
		return g.IntegralTo(x) <= g.IntegralTo(y)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkConvolve(b *testing.B) {
	f := Tabulate(func(x float64) float64 { return math.Exp(-x) }, 0.01, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Convolve(f)
	}
}

func BenchmarkInvertLaplaceEuler(b *testing.B) {
	L := func(s complex128) complex128 { return 1 / (s + 1) }
	for i := 0; i < b.N; i++ {
		_ = InvertLaplaceEuler(L, 1.0)
	}
}
