package numerics

import (
	"fmt"
	"math"
)

// Trapezoid integrates f over [a, b] with n uniform panels.  It panics if
// n <= 0 or b < a.
func Trapezoid(f func(float64) float64, a, b float64, n int) float64 {
	if n <= 0 {
		panic("numerics: Trapezoid with n <= 0")
	}
	if b < a {
		panic("numerics: Trapezoid with b < a")
	}
	if a == b {
		return 0
	}
	h := (b - a) / float64(n)
	sum := (f(a) + f(b)) / 2
	for i := 1; i < n; i++ {
		sum += f(a + float64(i)*h)
	}
	return sum * h
}

// Simpson integrates f over [a, b] with n uniform panels (n is rounded up
// to the next even value).  Fourth-order accurate for smooth integrands.
func Simpson(f func(float64) float64, a, b float64, n int) float64 {
	if n <= 0 {
		panic("numerics: Simpson with n <= 0")
	}
	if b < a {
		panic("numerics: Simpson with b < a")
	}
	if a == b {
		return 0
	}
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

// AdaptiveSimpson integrates f over [a, b] to the requested absolute
// tolerance using recursive interval halving, up to maxDepth levels.
func AdaptiveSimpson(f func(float64) float64, a, b, tol float64, maxDepth int) float64 {
	if b < a {
		panic("numerics: AdaptiveSimpson with b < a")
	}
	if a == b {
		return 0
	}
	fa, fb := f(a), f(b)
	m := (a + b) / 2
	fm := f(m)
	whole := (b - a) / 6 * (fa + 4*fm + fb)
	return adaptiveSimpsonAux(f, a, b, fa, fb, fm, whole, tol, maxDepth)
}

func adaptiveSimpsonAux(f func(float64) float64, a, b, fa, fb, fm, whole, tol float64, depth int) float64 {
	m := (a + b) / 2
	lm, rm := (a+m)/2, (m+b)/2
	flm, frm := f(lm), f(rm)
	left := (m - a) / 6 * (fa + 4*flm + fm)
	right := (b - m) / 6 * (fm + 4*frm + fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return adaptiveSimpsonAux(f, a, m, fa, fm, flm, left, tol/2, depth-1) +
		adaptiveSimpsonAux(f, m, b, fm, fb, frm, right, tol/2, depth-1)
}

// Bisect finds a root of f in [a, b] (where f(a) and f(b) must have
// opposite signs) to the given x-tolerance.  It returns an error if the
// root is not bracketed.
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if fa*fb > 0 {
		return 0, fmt.Errorf("numerics: root not bracketed on [%v, %v] (f=%v, %v)", a, b, fa, fb)
	}
	for b-a > tol {
		m := (a + b) / 2
		fm := f(m)
		if fm == 0 {
			return m, nil
		}
		if fa*fm < 0 {
			b, fb = m, fm
		} else {
			a, fa = m, fm
		}
	}
	_ = fb
	return (a + b) / 2, nil
}

// GoldenSection minimizes a unimodal f on [a, b] to the given x-tolerance
// and returns the minimizer.
func GoldenSection(f func(float64) float64, a, b, tol float64) float64 {
	if b < a {
		a, b = b, a
	}
	const invPhi = 0.6180339887498949 // 1/φ
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for b-a > tol {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	return (a + b) / 2
}

// MinimizeGrid evaluates f at n+1 uniformly spaced points of [a, b] and
// returns the abscissa and value of the smallest sample.  It is the robust
// companion to GoldenSection when unimodality is uncertain.
func MinimizeGrid(f func(float64) float64, a, b float64, n int) (xMin, fMin float64) {
	if n <= 0 {
		panic("numerics: MinimizeGrid with n <= 0")
	}
	h := (b - a) / float64(n)
	xMin, fMin = a, f(a)
	for i := 1; i <= n; i++ {
		x := a + float64(i)*h
		if v := f(x); v < fMin {
			xMin, fMin = x, v
		}
	}
	return xMin, fMin
}

// FixedPoint iterates x ← g(x) with damping until successive iterates
// differ by less than tol, or maxIter is reached (returning an error).
// Damping factor w in (0, 1] blends x_{n+1} = w·g(x_n) + (1−w)·x_n, which
// stabilizes the loss↔service coupling iteration of §4.1.
func FixedPoint(g func(float64) float64, x0, w, tol float64, maxIter int) (float64, error) {
	if w <= 0 || w > 1 {
		return 0, fmt.Errorf("numerics: FixedPoint damping %v outside (0,1]", w)
	}
	x := x0
	for i := 0; i < maxIter; i++ {
		next := w*g(x) + (1-w)*x
		if math.Abs(next-x) < tol {
			return next, nil
		}
		x = next
	}
	return x, fmt.Errorf("numerics: fixed point did not converge in %d iterations (last=%v)", maxIter, x)
}

// GeometricSeriesSum computes Σ_{i=0}^{∞} ρ^i·a(i), truncating once the
// bound ρ^i·cap/(1−ρ) of the remaining tail falls below tol, where cap
// bounds |a(i)|.  It returns the sum and the number of terms used.  For
// ρ >= 1 it sums until a(i)·ρ^i < tol (the caller must guarantee a(i)
// decays, as ∫₀ᴷβ⁽ⁱ⁾ does), up to maxTerms.
func GeometricSeriesSum(rho float64, a func(int) float64, capBound, tol float64, maxTerms int) (sum float64, terms int) {
	pow := 1.0
	for i := 0; i < maxTerms; i++ {
		term := pow * a(i)
		sum += term
		terms = i + 1
		if rho < 1 {
			if pow*rho*capBound/(1-rho) < tol {
				break
			}
		} else if i > 0 && math.Abs(term) < tol {
			break
		}
		pow *= rho
	}
	return sum, terms
}
