// Package numerics supplies the numerical machinery that the 1983 paper's
// authors had to hand-roll and that Go's standard library does not provide:
// uniform-grid function representation, discrete convolution (for the
// i-fold convolutions β⁽ⁱ⁾ in eq. 4.7), quadrature, bracketed root finding
// and minimization, and numerical inversion of Laplace transforms (for the
// LCFS baseline's waiting-time law).  Everything is pure, allocation-aware
// Go with no external dependencies.
package numerics
