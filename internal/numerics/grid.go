package numerics

import (
	"fmt"
)

// Grid is a real function tabulated on the uniform grid {0, Step, 2·Step,
// ..., (len(Y)-1)·Step}.  It is the common currency between the residual
// service densities, their convolutions, and the quadrature routines.
type Grid struct {
	Step float64   // spacing between samples; > 0
	Y    []float64 // samples, Y[i] = f(i*Step)
}

// NewGrid allocates a zero grid with n samples at the given spacing.  It
// panics if n <= 0 or step <= 0.
func NewGrid(step float64, n int) *Grid {
	if n <= 0 || step <= 0 {
		panic(fmt.Sprintf("numerics: invalid grid (step=%v, n=%d)", step, n))
	}
	return &Grid{Step: step, Y: make([]float64, n)}
}

// Tabulate samples f on [0, (n-1)·step].
func Tabulate(f func(float64) float64, step float64, n int) *Grid {
	g := NewGrid(step, n)
	for i := range g.Y {
		g.Y[i] = f(float64(i) * step)
	}
	return g
}

// Len returns the number of samples.
func (g *Grid) Len() int { return len(g.Y) }

// X returns the abscissa of sample i.
func (g *Grid) X(i int) float64 { return float64(i) * g.Step }

// At evaluates the grid at an arbitrary x by linear interpolation.  Values
// outside the tabulated range clamp to the boundary samples.
func (g *Grid) At(x float64) float64 {
	if x <= 0 {
		return g.Y[0]
	}
	t := x / g.Step
	i := int(t)
	if i >= len(g.Y)-1 {
		return g.Y[len(g.Y)-1]
	}
	frac := t - float64(i)
	return g.Y[i]*(1-frac) + g.Y[i+1]*frac
}

// Clone returns an independent deep copy.
func (g *Grid) Clone() *Grid {
	return &Grid{Step: g.Step, Y: append([]float64(nil), g.Y...)}
}

// Scale multiplies every sample by c in place and returns g.
func (g *Grid) Scale(c float64) *Grid {
	for i := range g.Y {
		g.Y[i] *= c
	}
	return g
}

// AddScaled adds c·other to g in place (grids must be compatible) and
// returns g.
func (g *Grid) AddScaled(c float64, other *Grid) *Grid {
	if other.Step != g.Step || len(other.Y) != len(g.Y) {
		panic("numerics: incompatible grids in AddScaled")
	}
	for i := range g.Y {
		g.Y[i] += c * other.Y[i]
	}
	return g
}

// Integral returns the trapezoidal integral of the grid over its full
// support [0, (n-1)·step].
func (g *Grid) Integral() float64 {
	return g.IntegralTo(float64(len(g.Y)-1) * g.Step)
}

// IntegralTo returns the trapezoidal integral over [0, x], clamping x to
// the tabulated range.  Fractional final intervals are handled by linear
// interpolation of the integrand.
func (g *Grid) IntegralTo(x float64) float64 {
	if x <= 0 {
		return 0
	}
	maxX := float64(len(g.Y)-1) * g.Step
	if x > maxX {
		x = maxX
	}
	t := x / g.Step
	i := int(t)
	sum := 0.0
	for j := 0; j < i; j++ {
		sum += (g.Y[j] + g.Y[j+1]) / 2 * g.Step
	}
	frac := t - float64(i)
	if frac > 0 && i < len(g.Y)-1 {
		yEnd := g.Y[i]*(1-frac) + g.Y[i+1]*frac
		sum += (g.Y[i] + yEnd) / 2 * (frac * g.Step)
	}
	return sum
}

// CumulativeIntegral returns a new grid whose sample i is the trapezoidal
// integral of g over [0, i·step]; i.e. the running antiderivative.
func (g *Grid) CumulativeIntegral() *Grid {
	out := NewGrid(g.Step, len(g.Y))
	sum := 0.0
	out.Y[0] = 0
	for i := 1; i < len(g.Y); i++ {
		sum += (g.Y[i-1] + g.Y[i]) / 2 * g.Step
		out.Y[i] = sum
	}
	return out
}

// Convolve returns the convolution (f*h)(x) = ∫₀ˣ f(x−u)·h(u) du of two
// density grids with the same step, tabulated on the same support length as
// the receiver.  Trapezoidal weights are used so that convolving smooth
// densities retains second-order accuracy.
func (g *Grid) Convolve(h *Grid) *Grid {
	if h.Step != g.Step {
		panic("numerics: convolving grids with different steps")
	}
	n := len(g.Y)
	out := NewGrid(g.Step, n)
	for i := 0; i < n; i++ {
		// Integrate u from 0 to x_i: Σ w_j f(x_i - u_j) h(u_j) dx.
		limit := i
		if limit >= len(h.Y) {
			limit = len(h.Y) - 1
		}
		sum := 0.0
		for j := 0; j <= limit; j++ {
			w := 1.0
			if j == 0 || j == limit {
				w = 0.5
			}
			sum += w * g.Y[i-j] * h.Y[j]
		}
		if limit > 0 {
			out.Y[i] = sum * g.Step
		} else {
			out.Y[i] = 0
		}
	}
	return out
}

// Normalize scales the grid so its full-support integral is 1 (making it a
// proper density on the truncated support).  It returns the original mass.
// If the mass is zero the grid is left unchanged.
func (g *Grid) Normalize() float64 {
	mass := g.Integral()
	if mass > 0 {
		g.Scale(1 / mass)
	}
	return mass
}

// Mean returns ∫ x·g(x) dx over the support (trapezoidal).
func (g *Grid) Mean() float64 {
	sum := 0.0
	for i := 0; i < len(g.Y)-1; i++ {
		x0, x1 := g.X(i), g.X(i+1)
		sum += (x0*g.Y[i] + x1*g.Y[i+1]) / 2 * g.Step
	}
	return sum
}
