// Package channel models the slotted broadcast multiple-access channel the
// window protocol runs over: a single shared medium with end-to-end
// propagation delay τ, ternary per-slot feedback (idle / success /
// collision) observable by every station within τ, and fixed-length
// message transmissions of M·τ.
//
// The model captures exactly the physical-layer behaviour the paper's
// analysis depends on: a probe slot costs τ whatever its outcome — that is
// how long every station needs to classify the slot — and a successful
// probe carries a complete message, occupying the channel for the message
// transmission time.  Collisions are detected and aborted within the probe
// slot (CSMA/CD-style), so a collision costs τ, not a full message time.
package channel

import (
	"fmt"

	"windowctl/internal/metrics"
	"windowctl/internal/window"
)

// Channel is a slotted broadcast channel.  It is driven slot by slot: the
// caller reports how many stations chose to transmit, and the channel
// returns the common feedback plus the slot's duration, while keeping
// utilization accounts.
type Channel struct {
	tau       float64
	txTime    float64
	stats     Stats
	collector metrics.Collector // nil unless Observe was called
}

// Stats aggregates channel activity.
type Stats struct {
	// IdleSlots, CollisionSlots and SuccessSlots count slot outcomes.
	IdleSlots, CollisionSlots, SuccessSlots int64
	// BusyTime is the time spent carrying successful transmissions.
	BusyTime float64
	// WastedTime is the time consumed by idle and collision slots.
	WastedTime float64
}

// TotalTime is the channel time accounted for so far.
func (s Stats) TotalTime() float64 { return s.BusyTime + s.WastedTime }

// Utilization is the fraction of channel time carrying successful
// transmissions — the classic efficiency measure.
func (s Stats) Utilization() float64 {
	t := s.TotalTime()
	if t == 0 {
		return 0
	}
	return s.BusyTime / t
}

// New creates a channel with propagation delay tau and message
// transmission time txTime (= M·τ for the paper's fixed-length messages).
// It panics unless 0 < tau and tau <= txTime.
func New(tau, txTime float64) *Channel {
	if tau <= 0 || txTime < tau {
		panic(fmt.Sprintf("channel: invalid timing (tau=%v, txTime=%v)", tau, txTime))
	}
	return &Channel{tau: tau, txTime: txTime}
}

// Observe attaches a metrics collector: every resolved slot is reported
// to it with its outcome and duration.  Pass nil to detach.
func (c *Channel) Observe(m metrics.Collector) { c.collector = m }

// Tau returns the propagation delay (slot time).
func (c *Channel) Tau() float64 { return c.tau }

// TxTime returns the message transmission time.
func (c *Channel) TxTime() float64 { return c.txTime }

// ResolveSlot consumes one protocol slot with the given number of
// transmitting stations and returns the feedback every station observes
// and the duration the slot occupied the channel: τ for idle or collision
// slots, the full transmission time for a success.  It panics on a
// negative transmitter count.
func (c *Channel) ResolveSlot(transmitters int) (window.Feedback, float64) {
	switch {
	case transmitters < 0:
		panic(fmt.Sprintf("channel: %d transmitters", transmitters))
	case transmitters == 0:
		c.stats.IdleSlots++
		c.stats.WastedTime += c.tau
		if c.collector != nil {
			c.collector.RecordSlots(metrics.SlotIdle, 1, c.tau)
		}
		return window.Idle, c.tau
	case transmitters == 1:
		c.stats.SuccessSlots++
		c.stats.BusyTime += c.txTime
		if c.collector != nil {
			c.collector.RecordSlots(metrics.SlotSuccess, 1, c.txTime)
		}
		return window.Success, c.txTime
	default:
		c.stats.CollisionSlots++
		c.stats.WastedTime += c.tau
		if c.collector != nil {
			c.collector.RecordSlots(metrics.SlotCollision, 1, c.tau)
		}
		return window.Collision, c.tau
	}
}

// Stats returns a copy of the accumulated accounts.
func (c *Channel) Stats() Stats { return c.stats }

// Classify returns the true feedback for a transmitter count without
// accounting for the slot — the physical-layer truth the fault layer
// (internal/fault) corrupts into per-station perceptions.  It panics on a
// negative count.
func Classify(transmitters int) window.Feedback {
	switch {
	case transmitters < 0:
		panic(fmt.Sprintf("channel: %d transmitters", transmitters))
	case transmitters == 0:
		return window.Idle
	case transmitters == 1:
		return window.Success
	default:
		return window.Collision
	}
}

// AccountSlot records one slot whose true outcome is truth and returns
// its duration, for imperfect-feedback runs where delivery is decided by
// the *sender's perception* rather than by the truth alone: a successful
// transmission whose sender misread its own slot (false collision or
// erasure) is aborted — the slot is accounted as a collision costing τ
// and carries no message.  With delivered == (truth == Success) it is
// exactly ResolveSlot's accounting.  It panics when delivered is claimed
// on a non-success slot.
func (c *Channel) AccountSlot(truth window.Feedback, delivered bool) float64 {
	if delivered && truth != window.Success {
		panic(fmt.Sprintf("channel: delivery claimed on a %v slot", truth))
	}
	switch {
	case truth == window.Idle:
		c.stats.IdleSlots++
		c.stats.WastedTime += c.tau
		if c.collector != nil {
			c.collector.RecordSlots(metrics.SlotIdle, 1, c.tau)
		}
		return c.tau
	case delivered:
		c.stats.SuccessSlots++
		c.stats.BusyTime += c.txTime
		if c.collector != nil {
			c.collector.RecordSlots(metrics.SlotSuccess, 1, c.txTime)
		}
		return c.txTime
	default:
		// True collision, or an aborted (sender-misread) transmission.
		c.stats.CollisionSlots++
		c.stats.WastedTime += c.tau
		if c.collector != nil {
			c.collector.RecordSlots(metrics.SlotCollision, 1, c.tau)
		}
		return c.tau
	}
}
