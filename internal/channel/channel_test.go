package channel

import (
	"math"
	"testing"

	"windowctl/internal/window"
)

func TestResolveSlotOutcomes(t *testing.T) {
	c := New(1, 25)
	fb, d := c.ResolveSlot(0)
	if fb != window.Idle || d != 1 {
		t.Fatalf("idle slot: %v %v", fb, d)
	}
	fb, d = c.ResolveSlot(1)
	if fb != window.Success || d != 25 {
		t.Fatalf("success slot: %v %v", fb, d)
	}
	fb, d = c.ResolveSlot(7)
	if fb != window.Collision || d != 1 {
		t.Fatalf("collision slot: %v %v", fb, d)
	}
	st := c.Stats()
	if st.IdleSlots != 1 || st.SuccessSlots != 1 || st.CollisionSlots != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.BusyTime != 25 || st.WastedTime != 2 {
		t.Fatalf("times %+v", st)
	}
	if math.Abs(st.Utilization()-25.0/27) > 1e-12 {
		t.Fatalf("utilization %v", st.Utilization())
	}
	if math.Abs(st.TotalTime()-27) > 1e-12 {
		t.Fatalf("total time %v", st.TotalTime())
	}
}

func TestEmptyStats(t *testing.T) {
	c := New(0.5, 0.5)
	if c.Stats().Utilization() != 0 {
		t.Fatal("fresh channel utilization")
	}
	if c.Tau() != 0.5 || c.TxTime() != 0.5 {
		t.Fatal("accessors")
	}
}

func TestInvalidConstruction(t *testing.T) {
	for i, fn := range []func(){
		func() { New(0, 1) },
		func() { New(-1, 1) },
		func() { New(2, 1) }, // txTime < tau
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestNegativeTransmittersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative transmitter count accepted")
		}
	}()
	New(1, 10).ResolveSlot(-1)
}

func TestClassify(t *testing.T) {
	if Classify(0) != window.Idle || Classify(1) != window.Success || Classify(2) != window.Collision || Classify(9) != window.Collision {
		t.Fatal("Classify misclassifies")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative transmitter count accepted")
		}
	}()
	Classify(-1)
}

// TestAccountSlot pins the imperfect-feedback accounting: idle slots stay
// idle whatever the perception, a delivered success costs the
// transmission time, and an undelivered success (sender misread — an
// aborted transmission) costs τ as a collision slot, matching ResolveSlot
// whenever delivered == (truth == Success).
func TestAccountSlot(t *testing.T) {
	c := New(1, 25)
	if d := c.AccountSlot(window.Idle, false); d != 1 {
		t.Fatalf("idle slot duration %v", d)
	}
	if d := c.AccountSlot(window.Success, true); d != 25 {
		t.Fatalf("delivered success duration %v", d)
	}
	if d := c.AccountSlot(window.Success, false); d != 1 {
		t.Fatalf("aborted success duration %v", d)
	}
	if d := c.AccountSlot(window.Collision, false); d != 1 {
		t.Fatalf("collision duration %v", d)
	}
	st := c.Stats()
	if st.IdleSlots != 1 || st.SuccessSlots != 1 || st.CollisionSlots != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.BusyTime != 25 || st.WastedTime != 3 {
		t.Fatalf("times %+v", st)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("delivery on a collision slot accepted")
		}
	}()
	c.AccountSlot(window.Collision, true)
}
