// Package windowctl is a Go reproduction of
//
//	J. F. Kurose, M. Schwartz, Y. Yemini,
//	"Controlling Window Protocols for Time-Constrained Communication in a
//	Multiple Access Environment", Proc. 5th Data Communications Symposium
//	(SIGCOMM), 1983.
//
// The library implements the time-window group random-access protocol,
// the paper's four-element control policy with its Theorem-1 optimal
// settings, the M/G/1-with-impatient-customers loss analysis of §4
// (equation 4.7), the uncontrolled FCFS/LCFS/RANDOM baselines of
// [Kurose 83], the §3 semi-Markov decision model with Howard policy
// iteration, and two event simulators (a fast global view and a full
// multi-station run over a broadcast-channel model).
//
// Quick start:
//
//	sys := windowctl.System{M: 25, RhoPrime: 0.5, K: 50}
//	analytic, _ := sys.AnalyticLoss()      // eq. 4.7
//	report, _ := sys.Simulate(windowctl.SimOptions{})
//	fmt.Println(analytic.Loss, report.Loss())
//
// The experiment harness regenerates every panel of the paper's figure 7:
//
//	panel, _ := windowctl.Figure7Panel(
//	    windowctl.PanelSpec{RhoPrime: 0.75, M: 25}, windowctl.Figure7Options{})
//	fmt.Println(panel.Format())
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package windowctl

import (
	"windowctl/internal/core"
	"windowctl/internal/dist"
	"windowctl/internal/fault"
	"windowctl/internal/metrics"
	"windowctl/internal/protocol"
	"windowctl/internal/queueing"
	"windowctl/internal/sim"
)

// System describes one protocol operating point in the paper's
// parameterization; see core.System.
type System = core.System

// Discipline selects the scheduling discipline.
type Discipline = core.Discipline

// Disciplines.
const (
	// Controlled is the paper's optimal policy (Theorem 1 + element (4)).
	Controlled = core.Controlled
	// FCFS is the uncontrolled global-FCFS baseline of [Kurose 83].
	FCFS = core.FCFS
	// LCFS is the uncontrolled global-LCFS baseline of [Kurose 83].
	LCFS = core.LCFS
	// Random is the uncontrolled random-order baseline of [Kurose 83].
	Random = core.Random
	// Tournament is Galtier's constant-window tournament MAC (protocol
	// zoo; simulation only).
	Tournament = core.Tournament
	// ACDC is admission-control delay-constrained random access
	// (protocol zoo; simulation only).
	ACDC = core.ACDC
)

// Disciplines returns every named discipline, in enum order.
func Disciplines() []Discipline { return core.Disciplines() }

// ParseDiscipline maps a canonical name (Discipline.String) back to the
// discipline value.
func ParseDiscipline(name string) (Discipline, error) { return core.ParseDiscipline(name) }

// ProtocolNames returns the names of every registered protocol in the
// MAC zoo (see internal/protocol), sorted.  Any of them can be set as
// System.Protocol or passed to the CLIs' -protocol flag; the discipline
// names are a subset.
func ProtocolNames() []string { return protocol.Names() }

// ProtocolInfo describes one registered protocol: its canonical name,
// one-line behavior summary and literature citation.
type ProtocolInfo = protocol.Info

// Protocols returns the registered protocols sorted by name, for zoo
// tables and -h listings.
func Protocols() []ProtocolInfo { return protocol.Infos() }

// AnalyticResult is a queueing-model prediction.
type AnalyticResult = core.AnalyticResult

// SimOptions tunes a simulation run.
type SimOptions = core.SimOptions

// Report is a simulation outcome.
type Report = sim.Report

// Replicated aggregates independent simulation replications with
// cross-replication confidence intervals.
type Replicated = sim.Replicated

// Collector receives slot-level protocol events from a simulation run;
// attach one via SimOptions.Collector or Figure7Options.Metrics.
type Collector = metrics.Collector

// SlotMetrics is the concrete Collector counting idle/success/collision
// slots, window splits, element-(4) discards, transmitted and lost
// messages plus a waiting-time histogram of accepted messages.  Runs
// instrumented with it verify the conservation invariants (see
// docs/OBSERVABILITY.md) and fail on violation.
type SlotMetrics = metrics.SlotMetrics

// NewSlotMetrics returns a SlotMetrics whose accepted-wait histogram has
// the given bin width and bin count; use binWidth = τ and enough bins to
// cover K.  The zero-value SlotMetrics is also usable (no histogram).
func NewSlotMetrics(binWidth float64, bins int) *SlotMetrics {
	return metrics.NewSlotMetrics(binWidth, bins)
}

// Distribution is a non-negative probability law, usable as a message-
// length model via System.TxLengths.
type Distribution = dist.Distribution

// FixedLength returns the constant message-length law (the paper's
// evaluated case).
func FixedLength(v float64) Distribution { return dist.NewDeterministic(v) }

// ExponentialLength returns an exponential message-length law with the
// given mean.
func ExponentialLength(mean float64) Distribution { return dist.NewExponential(1 / mean) }

// ErlangLength returns an Erlang-k message-length law with the given
// mean, interpolating variability between exponential (k = 1) and fixed
// (k → ∞).
func ErlangLength(k int, mean float64) Distribution {
	return dist.NewErlang(k, float64(k)/mean)
}

// PanelSpec identifies a figure-7 panel.
type PanelSpec = sim.PanelSpec

// Panel is an evaluated figure-7 panel.
type Panel = sim.Panel

// Point is one constraint value of a panel.
type Point = sim.Point

// Figure7Options controls the harness' simulation side.
type Figure7Options = sim.SimOptions

// Figure7Panel evaluates one figure-7 panel (analytic curves plus
// simulation points).
func Figure7Panel(spec PanelSpec, opt Figure7Options) (Panel, error) {
	return sim.Figure7Panel(spec, opt)
}

// Figure7Panels evaluates a set of figure-7 panels, fanning the per-panel
// analytic solves and per-(constraint, protocol) simulation runs over
// Figure7Options.Workers concurrent workers; results are bit-identical at
// every worker count.
func Figure7Panels(specs []PanelSpec, opt Figure7Options) ([]Panel, error) {
	return sim.Figure7Panels(specs, opt)
}

// AllFigure7Panels returns the paper's six panel specifications
// (ρ′ ∈ {.25, .50, .75} × M ∈ {25, 100}).
func AllFigure7Panels() []PanelSpec { return sim.AllPanels() }

// FaultConfig configures imperfect-feedback injection for a run (attach
// via SimOptions.Faults).  The zero value keeps feedback perfect and the
// run bit-identical to a fault-free build.
type FaultConfig = fault.Config

// FaultRates holds the independent per-slot probabilities of the three
// feedback-fault kinds: erasures, false collisions, missed collisions.
type FaultRates = fault.Rates

// DegradationOptions controls a loss-versus-feedback-error evaluation.
type DegradationOptions = sim.DegradationOptions

// DegradationPanel is an evaluated degradation curve (loss vs. feedback-
// error rate for every constraint of one (ρ′, M) panel).
type DegradationPanel = sim.DegradationPanel

// DegradationRow is one constraint's loss curve across the error grid.
type DegradationRow = sim.DegradationRow

// DegradationPoint is one (constraint, error-rate) cell of a curve.
type DegradationPoint = sim.DegradationPoint

// DegradationPanels evaluates loss-versus-feedback-error curves for the
// given panels over DegradationOptions.Workers concurrent workers.  The
// rate-0 column is bit-identical to the perfect-feedback Figure7Panels
// simulation with the same seed.
func DegradationPanels(specs []PanelSpec, opt DegradationOptions) ([]DegradationPanel, error) {
	return sim.DegradationPanels(specs, opt)
}

// Transform perturbs one station's membership test (see the §5
// extensions: priority via window sizes, asynchronous clocks).
type Transform = sim.Transform

// HeterogeneousReport extends Report with per-station breakdowns.
type HeterogeneousReport = sim.HeterogeneousReport

// StationReport carries one station's outcome counts.
type StationReport = sim.StationReport

// PriorityStretch scales a station's membership window by factor (> 1
// raises priority) down to the given window-length floor.
func PriorityStretch(factor, floor float64) Transform {
	return sim.PriorityStretch(factor, floor)
}

// ClockSkew shifts a station's view of every window by skew and shrinks
// it by a symmetric guard band (Molle-style asynchronous operation).
func ClockSkew(skew, guard float64) Transform { return sim.ClockSkew(skew, guard) }

// OptimalWindowContent returns G*, the mean initial-window content that
// minimizes mean windowing time per scheduled message — the paper's
// element-(2) heuristic, a pure number (≈ 1.09).
func OptimalWindowContent() float64 { return queueing.OptimalWindowContent() }
