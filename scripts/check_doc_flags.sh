#!/bin/sh
# check_doc_flags.sh — verifies that every `go run ./cmd/<name>` example
# in the documentation only uses flags the command actually defines, so
# the docs cannot drift from the CLIs (the failure mode this guards
# against: a flag is renamed and a README example keeps the old name).
#
# Backslash-continued example lines are joined before extraction;
# trailing `# comments`, output redirections and pipes are stripped;
# `-flag=value` counts as `-flag`.
set -eu
cd "$(dirname "$0")/.."

DOCS="README.md docs/PROTOCOLS.md docs/SERVICE.md"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# flags_of CMD prints the sorted flag names `go run ./cmd/CMD -h`
# defines, caching per command (each -h invocation is a build).
flags_of() {
    if [ ! -f "$tmp/flags.$1" ]; then
        go run "./cmd/$1" -h 2>&1 |
            sed -n 's/^  *\(-[a-z][a-z-]*\).*/\1/p' |
            sort -u >"$tmp/flags.$1"
    fi
    cat "$tmp/flags.$1"
}

: >"$tmp/errors"
for doc in $DOCS; do
    [ -f "$doc" ] || { echo "$doc: missing" >>"$tmp/errors"; continue; }
    # Join continuation lines, keep go-run invocations, drop comments,
    # redirections and pipes.
    sed -e ':a' -e '/\\$/N; s/\\\n/ /; ta' "$doc" |
        grep -E '^[[:space:]]*go run \./cmd/' |
        sed -e 's/[[:space:]]#.*$//' -e 's/[>|].*$//' >"$tmp/cmds" || true
    while IFS= read -r line; do
        # shellcheck disable=SC2086
        set -- $line
        shift 2 # "go run"
        cmd=${1#./cmd/}
        shift
        for tok in "$@"; do
            case $tok in
            -*)
                flag=${tok%%=*}
                if ! flags_of "$cmd" | grep -qx -- "$flag"; then
                    echo "$doc: $cmd does not define $flag (in: go run ./cmd/$cmd $*)" >>"$tmp/errors"
                fi
                ;;
            esac
        done
    done <"$tmp/cmds"
done

if [ -s "$tmp/errors" ]; then
    echo "documentation flag examples diverge from the CLIs:" >&2
    cat "$tmp/errors" >&2
    exit 1
fi
echo "doc flag examples match the CLIs"
