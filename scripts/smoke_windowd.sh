#!/bin/sh
# smoke_windowd.sh — end-to-end smoke of the live admission-control
# service: build windowd and windowload, start the daemon on an
# ephemeral loopback port, drive it with the load generator for a
# couple of seconds, and assert
#
#   1. /healthz answers 200 "ok" while serving,
#   2. the target transmitted a nonzero number of messages with its
#      conservation invariants intact (windowload exits nonzero
#      otherwise),
#   3. a TCP-ingest burst (windowload -transport tcp against the
#      -listen-tcp plane) settles with exact accounting scraped from
#      /debug/vars: ingested == transmitted + discarded + resident,
#      with /healthz still 200 afterwards,
#   4. SIGTERM drains cleanly: exit status 0 and the
#      "conservation invariants verified" marker on stdout.
#
# CI runs this in the docs job; it is also handy locally:
#
#   ./scripts/smoke_windowd.sh
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
cleanup() {
    [ -n "${pid:-}" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/windowd" ./cmd/windowd
go build -o "$tmp/windowload" ./cmd/windowload

"$tmp/windowd" -listen 127.0.0.1:0 -listen-tcp 127.0.0.1:0 -m 10 -km 1 -load 0.9 \
    >"$tmp/windowd.out" 2>"$tmp/windowd.err" &
pid=$!

# The daemon announces its bound address on stderr:
#   windowd: listening on 127.0.0.1:PORT (...)
addr=
for _ in $(seq 1 50); do
    addr=$(awk '/listening on/ { print $4; exit }' "$tmp/windowd.err" 2>/dev/null || true)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "windowd died at startup:"; cat "$tmp/windowd.err"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "windowd never announced its address"; cat "$tmp/windowd.err"; exit 1; }
echo "windowd is at $addr"

health=$(curl -fsS "http://$addr/healthz")
[ "$health" = "ok" ] || { echo "healthz said: $health"; exit 1; }

"$tmp/windowload" -target "http://$addr" -duration 2s -rate 5e5 -seed 7 | tee "$tmp/load.out"
grep -q 'conservation ok' "$tmp/load.out" || { echo "load run reported unbalanced books"; exit 1; }
tx=$(awk '/transmitted/ { print $2; exit }' "$tmp/load.out")
[ -n "$tx" ] && [ "$tx" -gt 0 ] || { echo "nothing transmitted (tx=$tx)"; exit 1; }

# TCP-ingest leg: burst over the binary plane (address autodiscovered
# from /config), then scrape /debug/vars until the owed backlog settles
# and assert the books balance exactly.
"$tmp/windowload" -target "http://$addr" -transport tcp -duration 2s -rate 2e6 -seed 8 | tee "$tmp/loadtcp.out"
grep -q 'conservation ok' "$tmp/loadtcp.out" || { echo "tcp load run reported unbalanced books"; exit 1; }

# jsonint KEY — first integer value of "KEY" in the last /debug/vars scrape.
jsonint() {
    sed -n 's/.*"'"$1"'": *\(-\{0,1\}[0-9][0-9]*\).*/\1/p' "$tmp/vars.json" | head -1
}
owed=-1
for _ in $(seq 1 100); do
    curl -fsS "http://$addr/debug/vars" >"$tmp/vars.json"
    owed=$(jsonint owed_arrivals)
    [ "$owed" = 0 ] && break
    sleep 0.1
done
[ "$owed" = 0 ] || { echo "owed backlog never settled (owed=$owed)"; exit 1; }
ing_http=$(jsonint http); ing_tcp=$(jsonint tcp)
arr=$(jsonint arrivals); tx2=$(jsonint transmissions)
shed=$(jsonint discards); resident=$(jsonint backlog)
[ "$ing_tcp" -gt 0 ] || { echo "tcp plane ingested nothing"; exit 1; }
ingested=$((ing_http + ing_tcp))
[ "$arr" = "$ingested" ] || { echo "booked $ingested but scheduled $arr"; exit 1; }
[ "$((tx2 + shed + resident))" = "$ingested" ] \
    || { echo "accounting broken: tx $tx2 + shed $shed + resident $resident != ingested $ingested"; exit 1; }
health=$(curl -fsS "http://$addr/healthz")
[ "$health" = "ok" ] || { echo "healthz after tcp burst said: $health"; exit 1; }
echo "tcp ingest accounting: $ingested ingested = $tx2 tx + $shed shed + $resident resident"

kill -TERM "$pid"
drained=1
wait "$pid" || drained=0
cat "$tmp/windowd.out"
[ "$drained" = 1 ] || { echo "windowd exited nonzero after SIGTERM"; exit 1; }
grep -q 'conservation invariants verified' "$tmp/windowd.out" \
    || { echo "missing drain verification marker"; exit 1; }
pid=
echo "windowd smoke: drained cleanly, $tx messages transmitted"
