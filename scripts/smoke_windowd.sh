#!/bin/sh
# smoke_windowd.sh — end-to-end smoke of the live admission-control
# service: build windowd and windowload, start the daemon on an
# ephemeral loopback port, drive it with the load generator for a
# couple of seconds, and assert
#
#   1. /healthz answers 200 "ok" while serving,
#   2. the target transmitted a nonzero number of messages with its
#      conservation invariants intact (windowload exits nonzero
#      otherwise),
#   3. SIGTERM drains cleanly: exit status 0 and the
#      "conservation invariants verified" marker on stdout.
#
# CI runs this in the docs job; it is also handy locally:
#
#   ./scripts/smoke_windowd.sh
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
cleanup() {
    [ -n "${pid:-}" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/windowd" ./cmd/windowd
go build -o "$tmp/windowload" ./cmd/windowload

"$tmp/windowd" -listen 127.0.0.1:0 -m 10 -km 1 -load 0.9 \
    >"$tmp/windowd.out" 2>"$tmp/windowd.err" &
pid=$!

# The daemon announces its bound address on stderr:
#   windowd: listening on 127.0.0.1:PORT (...)
addr=
for _ in $(seq 1 50); do
    addr=$(awk '/listening on/ { print $4; exit }' "$tmp/windowd.err" 2>/dev/null || true)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "windowd died at startup:"; cat "$tmp/windowd.err"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "windowd never announced its address"; cat "$tmp/windowd.err"; exit 1; }
echo "windowd is at $addr"

health=$(curl -fsS "http://$addr/healthz")
[ "$health" = "ok" ] || { echo "healthz said: $health"; exit 1; }

"$tmp/windowload" -target "http://$addr" -duration 2s -rate 5e5 -seed 7 | tee "$tmp/load.out"
grep -q 'conservation ok' "$tmp/load.out" || { echo "load run reported unbalanced books"; exit 1; }
tx=$(awk '/transmitted/ { print $2; exit }' "$tmp/load.out")
[ -n "$tx" ] && [ "$tx" -gt 0 ] || { echo "nothing transmitted (tx=$tx)"; exit 1; }

kill -TERM "$pid"
drained=1
wait "$pid" || drained=0
cat "$tmp/windowd.out"
[ "$drained" = 1 ] || { echo "windowd exited nonzero after SIGTERM"; exit 1; }
grep -q 'conservation invariants verified' "$tmp/windowd.out" \
    || { echo "missing drain verification marker"; exit 1; }
pid=
echo "windowd smoke: drained cleanly, $tx messages transmitted"
